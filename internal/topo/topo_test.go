package topo

import (
	"math"
	"testing"

	"repro/internal/machine"
)

func TestBlockPlacementMatchesLegacy(t *testing.T) {
	m := machine.Summit()
	s := Default(m, 14) // 2 full nodes + ragged node of 2
	if s.Nodes() != 3 {
		t.Fatalf("Nodes = %d, want 3", s.Nodes())
	}
	for r := 0; r < 14; r++ {
		if s.Node(r) != m.Node(r) {
			t.Errorf("rank %d: topo node %d != legacy %d", r, s.Node(r), m.Node(r))
		}
	}
	if s.Residents(0) != 6 || s.Residents(2) != 2 {
		t.Errorf("residents = %d,%d want 6,2", s.Residents(0), s.Residents(2))
	}
	if s.Leader(1) != 6 {
		t.Errorf("leader of node 1 = %d, want 6", s.Leader(1))
	}
}

func TestRoundRobinPlacement(t *testing.T) {
	m := machine.Summit()
	s, err := New(m, 14, RoundRobin(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// ceil(14/6) = 3 nodes; rank r sits on node r mod 3.
	if s.Nodes() != 3 {
		t.Fatalf("Nodes = %d, want 3", s.Nodes())
	}
	for r := 0; r < 14; r++ {
		if s.Node(r) != r%3 {
			t.Errorf("rank %d on node %d, want %d", r, s.Node(r), r%3)
		}
	}
	// Residents: 14 ranks over 3 nodes → 5,5,4.
	if s.Residents(0) != 5 || s.Residents(1) != 5 || s.Residents(2) != 4 {
		t.Errorf("residents = %d,%d,%d", s.Residents(0), s.Residents(1), s.Residents(2))
	}
	// Consecutive ranks never share a node (until wrap).
	if s.SameNode(0, 1) || !s.SameNode(0, 3) {
		t.Error("round-robin adjacency wrong")
	}
}

func TestPermutationPlacement(t *testing.T) {
	m := machine.Summit()
	// Spread 4 ranks one per node: slots 0, 6, 12, 18.
	s, err := New(m, 4, Permutation([]int{0, 6, 12, 18}), nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Nodes() != 4 {
		t.Fatalf("Nodes = %d, want 4", s.Nodes())
	}
	for r := 0; r < 4; r++ {
		if s.Node(r) != r || s.Residents(r) != 1 || s.Leader(r) != r {
			t.Errorf("rank %d: node=%d residents=%d leader=%d", r, s.Node(r), s.Residents(r), s.Leader(r))
		}
	}
	// Sole resident gets the whole injection pipe.
	if bw := s.SchedFlowBW(0, 1); bw != m.NodeInjectionBW {
		t.Errorf("solo-resident sched bw = %g, want full injection %g", bw, m.NodeInjectionBW)
	}
}

func TestPermutationValidation(t *testing.T) {
	m := machine.Summit()
	if _, err := New(m, 3, Permutation([]int{0, 1}), nil); err == nil {
		t.Error("wrong-length permutation accepted")
	}
	if _, err := New(m, 2, Permutation([]int{3, 3}), nil); err == nil {
		t.Error("duplicate slot accepted")
	}
	if _, err := New(m, 2, Permutation([]int{-1, 0}), nil); err == nil {
		t.Error("negative slot accepted")
	}
}

func TestNaiveFlowBWMatchesMachine(t *testing.T) {
	m := machine.Summit()
	for _, size := range []int{1, 5, 12, 64} {
		s := Default(m, size)
		for _, pair := range [][2]int{{0, size - 1}, {size - 1, 0}} {
			a, b := pair[0], pair[1]
			if a == b {
				continue
			}
			got := s.NaiveFlowBW(a, b)
			want := m.FlowBW(a, b, size)
			if math.Abs(got-want)/want > 1e-12 {
				t.Errorf("size %d (%d→%d): topo %g != machine %g", size, a, b, got, want)
			}
		}
	}
}

func TestSchedVsNaive(t *testing.T) {
	m := machine.Summit()
	s := Default(m, 24)
	// Scheduled traffic skips the saturation factor.
	if s.SchedFlowBW(0, 23) <= s.NaiveFlowBW(0, 23) {
		t.Error("scheduled inter flow should beat naive")
	}
	// Intra-node flows are identical.
	if s.SchedFlowBW(0, 1) != m.IntraBW || s.NaiveFlowBW(0, 1) != m.IntraBW {
		t.Error("intra-node flows should see IntraBW")
	}
}

func TestFabricReplacesSaturation(t *testing.T) {
	m := machine.Summit()
	f := &Fabric{NodesPerSwitch: 4, UplinkBW: 4 * 23.5e9, AdaptiveLoss: 0.05}
	s, err := New(m, 48, Block(), f) // 8 nodes, 2 switches
	if err != nil {
		t.Fatal(err)
	}
	// Same-switch inter-node naive flow: one adaptive level, no uplink cap.
	sameSw := s.NaiveFlowBW(0, 6) // nodes 0,1 under switch 0
	wantSame := s.InjShare(0) * (1 - f.AdaptiveLoss)
	if math.Abs(sameSw-wantSame)/wantSame > 1e-12 {
		t.Errorf("same-switch naive bw = %g, want %g", sameSw, wantSame)
	}
	// Cross-switch: uplink shared by 24 crossing flows caps below the
	// injection share, and two adaptive levels apply.
	crossSw := s.NaiveFlowBW(0, 47)
	up := f.UplinkBW / 24
	wantCross := up * (1 - f.AdaptiveLoss) * (1 - f.AdaptiveLoss)
	if math.Abs(crossSw-wantCross)/wantCross > 1e-12 {
		t.Errorf("cross-switch naive bw = %g, want %g", crossSw, wantCross)
	}
	if crossSw >= sameSw {
		t.Error("crossing a switch should cost bandwidth")
	}
	// Scheduled traffic pays the structural cap but no adaptive loss.
	if got := s.SchedFlowBW(0, 47); math.Abs(got-up)/up > 1e-12 {
		t.Errorf("cross-switch sched bw = %g, want uplink share %g", got, up)
	}
}

func TestFabricValidation(t *testing.T) {
	m := machine.Summit()
	bad := []*Fabric{
		{NodesPerSwitch: 0, UplinkBW: 1e9},
		{NodesPerSwitch: 2, UplinkBW: 0},
		{NodesPerSwitch: 2, UplinkBW: 1e9, AdaptiveLoss: 1},
		{NodesPerSwitch: 2, UplinkBW: 1e9, InjectionBW: -1},
	}
	for i, f := range bad {
		if _, err := New(m, 12, Block(), f); err == nil {
			t.Errorf("bad fabric %d accepted", i)
		}
	}
}

func TestLeaderBW(t *testing.T) {
	m := machine.Summit()
	s := Default(m, 18) // 3 full nodes
	// A leader aggregating the whole node drives the full injection pipe.
	if bw := s.LeaderBW(0, 1, 6); bw != m.NodeInjectionBW {
		t.Errorf("full-node leader bw = %g, want %g", bw, m.NodeInjectionBW)
	}
	// Aggregating only 2 of 6 residents concentrates just the group's share.
	want := m.NodeInjectionBW * 2 / 6
	if bw := s.LeaderBW(0, 1, 2); math.Abs(bw-want)/want > 1e-12 {
		t.Errorf("partial leader bw = %g, want %g", bw, want)
	}
	// aggr out of range clamps to the residents.
	if s.LeaderBW(0, 1, 0) != m.NodeInjectionBW || s.LeaderBW(0, 1, 99) != m.NodeInjectionBW {
		t.Error("aggr clamping wrong")
	}
}

func TestInjectionOverride(t *testing.T) {
	m := machine.Summit()
	f := &Fabric{NodesPerSwitch: 64, UplinkBW: 1e12, InjectionBW: 10e9}
	s, err := New(m, 12, Block(), f)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.InjShare(0); got != 10e9/6 {
		t.Errorf("overridden injection share = %g, want %g", got, 10e9/6)
	}
}

func TestPathResolution(t *testing.T) {
	m := machine.Summit()
	s := Default(m, 12)
	p := s.Path(0, 7)
	if p.SameNode || p.BW != s.NaiveFlowBW(0, 7) || p.Latency != m.InterLatency {
		t.Errorf("inter path = %+v", p)
	}
	p = s.Path(0, 1)
	if !p.SameNode || p.BW != m.IntraBW || p.Latency != m.IntraLatency {
		t.Errorf("intra path = %+v", p)
	}
}

func TestPlacementString(t *testing.T) {
	if Block().String() != "block" || RoundRobin().String() != "round-robin" {
		t.Error("placement names wrong")
	}
	if Permutation([]int{0, 1}).String() != "permutation(2)" {
		t.Error("permutation name wrong")
	}
}
