// Package topo models the communication topology of a job explicitly: which
// GPU slot each rank occupies (placement), how nodes hang off the switch
// hierarchy (fabric), and what bandwidth a given flow actually sees on its
// path. It replaces two simplifications baked into the machine model since
// the first simulator: block placement (rank → rank/GPUsPerNode) and the
// phenomenological fabric saturation factor.
//
// A System is built once per world from a machine.Model, a job size, a
// Placement and an optional Fabric. Without a fabric it reproduces the
// legacy behaviour — injection-share bandwidth degraded by the calibrated
// SaturationFactor — except that the injection share is divided by the
// node's *actual* resident ranks rather than always GPUsPerNode, so ragged
// last nodes and sub-node jobs are no longer overcharged. With a fabric, the
// saturation heuristic is replaced by structural contention: concurrent
// flows crossing a switch uplink share its capacity, and unscheduled
// (non-permutation) traffic additionally sheds a calibrated adaptive-routing
// loss per fabric level it crosses.
package topo

import (
	"fmt"
	"sort"

	"repro/internal/machine"
)

// Kind enumerates the built-in rank→GPU placement policies.
type Kind int

const (
	// KindBlock fills nodes in rank order: rank r sits on node r/GPUsPerNode.
	// This is how jobs are launched in all of the paper's experiments and is
	// the default everywhere.
	KindBlock Kind = iota
	// KindRoundRobin deals ranks across nodes like cards: rank r sits on node
	// r mod nnodes. Pencil rows (consecutive ranks) then span many nodes —
	// the classic pathological placement for FFT reshapes.
	KindRoundRobin
	// KindPermutation places rank r on the explicit GPU slot perm[r]
	// (node = slot/GPUsPerNode). Lets experiments pin arbitrary layouts,
	// including deliberately sparse ones (one rank per node).
	KindPermutation
)

// Placement maps ranks onto GPU slots. The zero value is block placement.
type Placement struct {
	kind Kind
	perm []int
}

// Block returns the default block placement.
func Block() Placement { return Placement{kind: KindBlock} }

// RoundRobin returns the round-robin placement.
func RoundRobin() Placement { return Placement{kind: KindRoundRobin} }

// Permutation returns an explicit placement: rank r occupies GPU slot
// perm[r], and slot s lives on node s/GPUsPerNode. Slots must be distinct
// and non-negative; they may exceed the job size to spread ranks thinly
// across more nodes than a block launch would use.
func Permutation(perm []int) Placement {
	p := append([]int(nil), perm...)
	return Placement{kind: KindPermutation, perm: p}
}

// Kind reports the placement policy.
func (p Placement) Kind() Kind { return p.kind }

// Slots resolves the explicit rank→GPU-slot map this placement induces for a
// job of the given size (slot s lives on node s/GPUsPerNode). Health
// accounting uses it to attribute per-rank evidence to physical GPU slots,
// whose identity survives engine rebuilds under different placements. A
// permutation whose length does not match the size resolves as block — the
// world construction it feeds rejects such a placement anyway.
func (p Placement) Slots(m *machine.Model, size int) []int {
	slots := make([]int, size)
	gpn := m.GPUsPerNode
	switch {
	case p.kind == KindRoundRobin:
		// Node n's residents are n, n+nn, n+2nn, … so rank r is resident
		// index r/nn on node r%nn.
		nn := (size + gpn - 1) / gpn
		for r := range slots {
			slots[r] = (r%nn)*gpn + r/nn
		}
	case p.kind == KindPermutation && len(p.perm) == size:
		copy(slots, p.perm)
	default: // block
		for r := range slots {
			slots[r] = r
		}
	}
	return slots
}

func (p Placement) String() string {
	switch p.kind {
	case KindBlock:
		return "block"
	case KindRoundRobin:
		return "round-robin"
	case KindPermutation:
		return fmt.Sprintf("permutation(%d)", len(p.perm))
	}
	return fmt.Sprintf("placement(%d)", int(p.kind))
}

// Fabric describes the switch level of the hierarchy. When attached to a
// System it replaces the machine model's phenomenological SaturationFactor
// with structural contention computed from concurrent flows.
type Fabric struct {
	// NodesPerSwitch groups consecutive nodes under leaf switches.
	NodesPerSwitch int
	// UplinkBW is the capacity of one leaf switch's uplink into the spine
	// (bytes/second), shared by the concurrent flows crossing it.
	UplinkBW float64
	// InjectionBW, when positive, overrides the machine model's
	// NodeInjectionBW (e.g. to model a rail failure).
	InjectionBW float64
	// AdaptiveLoss is the fractional per-flow bandwidth lost to adaptive
	// routing by *unscheduled* traffic for each fabric level it crosses
	// (node→switch, switch→spine). Scheduled permutation rounds do not pay
	// it — that is the structural reading of why MPI schedules all-to-alls.
	AdaptiveLoss float64
}

// Validate checks the fabric parameters.
func (f *Fabric) Validate() error {
	if f.NodesPerSwitch < 1 {
		return fmt.Errorf("topo: NodesPerSwitch must be >= 1, got %d", f.NodesPerSwitch)
	}
	if f.UplinkBW <= 0 {
		return fmt.Errorf("topo: UplinkBW must be positive, got %g", f.UplinkBW)
	}
	if f.InjectionBW < 0 {
		return fmt.Errorf("topo: InjectionBW must be >= 0, got %g", f.InjectionBW)
	}
	if f.AdaptiveLoss < 0 || f.AdaptiveLoss >= 1 {
		return fmt.Errorf("topo: AdaptiveLoss must be in [0,1), got %g", f.AdaptiveLoss)
	}
	return nil
}

// System is the resolved topology of one job: every rank's node, each node's
// resident count and leader, and the switch each node hangs off. All methods
// take world ranks.
type System struct {
	m      *machine.Model
	size   int
	place  Placement
	fabric *Fabric

	nodeOf    []int   // rank → node
	localOf   []int   // rank → index among its node's residents
	nodeRanks [][]int // node → resident ranks, ascending
	leaders   []int   // node → lowest resident rank

	switchOf   []int // node → leaf switch
	ranksUnder []int // switch → resident ranks
	nodesUnder []int // switch → nodes
}

// New resolves a placement (and optional fabric) against a machine and job
// size.
func New(m *machine.Model, size int, place Placement, fabric *Fabric) (*System, error) {
	if size < 1 {
		return nil, fmt.Errorf("topo: invalid job size %d", size)
	}
	if fabric != nil {
		if err := fabric.Validate(); err != nil {
			return nil, err
		}
	}
	gpn := m.GPUsPerNode
	raw := make([]int, size) // rank → raw node id (possibly sparse)
	switch place.kind {
	case KindBlock:
		for r := range raw {
			raw[r] = r / gpn
		}
	case KindRoundRobin:
		nn := (size + gpn - 1) / gpn
		for r := range raw {
			raw[r] = r % nn
		}
	case KindPermutation:
		if len(place.perm) != size {
			return nil, fmt.Errorf("topo: permutation has %d slots for %d ranks", len(place.perm), size)
		}
		seen := make(map[int]bool, size)
		for r, slot := range place.perm {
			if slot < 0 {
				return nil, fmt.Errorf("topo: negative GPU slot %d for rank %d", slot, r)
			}
			if seen[slot] {
				return nil, fmt.Errorf("topo: GPU slot %d assigned twice", slot)
			}
			seen[slot] = true
			raw[r] = slot / gpn
		}
	default:
		return nil, fmt.Errorf("topo: unknown placement kind %d", int(place.kind))
	}

	// Compact raw node ids into dense indices in ascending raw order, so
	// permutations with holes still produce residents-per-node counts.
	distinct := map[int]bool{}
	for _, n := range raw {
		distinct[n] = true
	}
	ids := make([]int, 0, len(distinct))
	for n := range distinct {
		ids = append(ids, n)
	}
	sort.Ints(ids)
	dense := make(map[int]int, len(ids))
	for i, n := range ids {
		dense[n] = i
	}

	s := &System{
		m:         m,
		size:      size,
		place:     place,
		fabric:    fabric,
		nodeOf:    make([]int, size),
		localOf:   make([]int, size),
		nodeRanks: make([][]int, len(ids)),
		leaders:   make([]int, len(ids)),
	}
	for r, n := range raw {
		id := dense[n]
		s.nodeOf[r] = id
		s.localOf[r] = len(s.nodeRanks[id])
		s.nodeRanks[id] = append(s.nodeRanks[id], r)
	}
	for n, ranks := range s.nodeRanks {
		s.leaders[n] = ranks[0]
	}

	nn := len(ids)
	nps := nn // no fabric: one flat "switch" (never crossed)
	if fabric != nil {
		nps = fabric.NodesPerSwitch
	}
	nsw := (nn + nps - 1) / nps
	s.switchOf = make([]int, nn)
	s.ranksUnder = make([]int, nsw)
	s.nodesUnder = make([]int, nsw)
	for n := 0; n < nn; n++ {
		sw := n / nps
		s.switchOf[n] = sw
		s.ranksUnder[sw] += len(s.nodeRanks[n])
		s.nodesUnder[sw]++
	}
	return s, nil
}

// Default returns the legacy topology: block placement, no fabric. It cannot
// fail for a valid size.
func Default(m *machine.Model, size int) *System {
	s, err := New(m, size, Block(), nil)
	if err != nil {
		panic(err)
	}
	return s
}

// Model returns the machine model the system was resolved against.
func (s *System) Model() *machine.Model { return s.m }

// Size returns the job size.
func (s *System) Size() int { return s.size }

// Nodes returns the number of occupied nodes.
func (s *System) Nodes() int { return len(s.nodeRanks) }

// Placement returns the placement the system was built with.
func (s *System) Placement() Placement { return s.place }

// Fabric returns the attached fabric (nil for the legacy saturation model).
func (s *System) Fabric() *Fabric { return s.fabric }

// Node reports the (dense) node index hosting a world rank.
func (s *System) Node(rank int) int { return s.nodeOf[rank] }

// SameNode reports whether two world ranks share a node.
func (s *System) SameNode(a, b int) bool { return s.nodeOf[a] == s.nodeOf[b] }

// Residents reports how many ranks live on a node.
func (s *System) Residents(node int) int { return len(s.nodeRanks[node]) }

// Leader returns the lowest world rank resident on a node.
func (s *System) Leader(node int) int { return s.leaders[node] }

// NodeRanks returns the resident world ranks of a node, ascending. The slice
// is owned by the System and must not be mutated.
func (s *System) NodeRanks(node int) []int { return s.nodeRanks[node] }

// Latency returns the wire latency between two world ranks.
func (s *System) Latency(a, b int) float64 {
	if s.SameNode(a, b) {
		return s.m.IntraLatency
	}
	return s.m.InterLatency
}

// injBW is the node injection bandwidth in effect.
func (s *System) injBW() float64 {
	if s.fabric != nil && s.fabric.InjectionBW > 0 {
		return s.fabric.InjectionBW
	}
	return s.m.NodeInjectionBW
}

// InjShare is the injection-bandwidth share of one resident flow on a node:
// the node's injection bandwidth divided by its actual resident ranks (not
// GPUsPerNode — a ragged last node or a sub-node job leaves each rank more
// headroom).
func (s *System) InjShare(node int) float64 {
	r := len(s.nodeRanks[node])
	if r < 1 {
		r = 1
	}
	return s.injBW() / float64(r)
}

// uplinkShare is the per-flow share of a leaf switch's uplink when every
// rank under it drives one flow across (the worst permutation round).
func (s *System) uplinkShare(sw int) float64 {
	cross := s.ranksUnder[sw]
	if out := s.size - s.ranksUnder[sw]; out < cross {
		cross = out
	}
	if cross < 1 {
		cross = 1
	}
	return s.fabric.UplinkBW / float64(cross)
}

// SchedFlowBW is the per-flow bandwidth a *scheduled* transfer sees between
// two world ranks: permutation rounds keep one flow per rank, so each flow
// gets its clean injection share, capped (with a fabric) by its share of any
// switch uplink it crosses. No adaptive-routing loss applies.
func (s *System) SchedFlowBW(src, dst int) float64 {
	if s.SameNode(src, dst) {
		return s.m.IntraBW
	}
	bw := s.InjShare(s.nodeOf[src])
	if s.fabric != nil {
		a, b := s.switchOf[s.nodeOf[src]], s.switchOf[s.nodeOf[dst]]
		if a != b {
			if up := s.uplinkShare(a); up < bw {
				bw = up
			}
			if up := s.uplinkShare(b); up < bw {
				bw = up
			}
		}
	}
	return bw
}

// NaiveFlowBW is the per-flow bandwidth of *unscheduled* traffic (the naive
// per-destination loop, generic P2P): the injection share degraded by fabric
// contention. Without a fabric that is the machine's calibrated saturation
// factor; with one, the structural uplink share times an adaptive-routing
// loss per fabric level crossed.
func (s *System) NaiveFlowBW(src, dst int) float64 {
	if s.SameNode(src, dst) {
		return s.m.IntraBW
	}
	if s.fabric == nil {
		return s.InjShare(s.nodeOf[src]) * s.m.SaturationFactor(s.Nodes())
	}
	bw := s.SchedFlowBW(src, dst)
	loss := 1 - s.fabric.AdaptiveLoss
	if s.switchOf[s.nodeOf[src]] != s.switchOf[s.nodeOf[dst]] {
		loss *= loss // second level crossed (switch → spine)
	}
	return bw * loss
}

// LeaderBW is the bandwidth a per-node leader flow drives between two nodes
// when it aggregates the traffic of aggr group ranks resident on the source
// node. The leader gets the group's fair share of the node's injection
// bandwidth concentrated into a single flow — concurrent exchange groups on
// the same node keep their own shares — capped by the uplink share among
// node-leader flows when a fabric is attached.
func (s *System) LeaderBW(srcNode, dstNode, aggr int) float64 {
	res := len(s.nodeRanks[srcNode])
	if res < 1 {
		res = 1
	}
	if aggr <= 0 || aggr > res {
		aggr = res
	}
	bw := s.injBW() * float64(aggr) / float64(res)
	if s.fabric != nil {
		a, b := s.switchOf[srcNode], s.switchOf[dstNode]
		if a != b {
			nn := len(s.nodeRanks)
			for _, sw := range [2]int{a, b} {
				cross := s.nodesUnder[sw]
				if out := nn - s.nodesUnder[sw]; out < cross {
					cross = out
				}
				if cross < 1 {
					cross = 1
				}
				if up := s.fabric.UplinkBW / float64(cross); up < bw {
					bw = up
				}
			}
		}
	}
	return bw
}

// Path resolves the machine-model path between two world ranks for naive
// (unscheduled) costing — the bandwidth MsgCostOn charges port time at.
func (s *System) Path(src, dst int) machine.Path {
	return machine.Path{
		SameNode: s.SameNode(src, dst),
		BW:       s.NaiveFlowBW(src, dst),
		Latency:  s.Latency(src, dst),
	}
}
