// Package gpu charges virtual time for the local kernels a distributed FFT
// launches on each accelerator — batched vendor FFTs, pack/unpack and
// transpose kernels, device↔host copies — and records one trace event per
// kernel so the paper's per-call and breakdown figures can be regenerated.
//
// The numerics of the kernels are computed elsewhere (internal/fft on the
// CPU); a Device only accounts for what the kernels would cost on the
// modelled GPU.
package gpu

import (
	"repro/internal/machine"
	"repro/internal/mpisim"
	"repro/internal/trace"
)

// Device is one rank's accelerator.
type Device struct {
	comm  *mpisim.Comm
	model *machine.GPU
	// fftName is the vendor library name used in trace events: cuFFT on
	// V100 machines, rocFFT on MI100 (Fig. 13 uses both). The per-kernel
	// event names are precomputed so charging a kernel on the execution hot
	// path performs no allocations.
	fftName               string
	name1D, name1DStrided string
	name2D, name2DStrided string
	nameR2C               string
}

// New returns the device of the calling rank.
func New(c *mpisim.Comm) *Device {
	g := &c.Model().GPU
	name := "cufft"
	if g.Name == "MI100" {
		name = "rocfft"
	}
	return &Device{
		comm: c, model: g, fftName: name,
		name1D: name + "_1d", name1DStrided: name + "_1d_strided",
		name2D: name + "_2d", name2DStrided: name + "_2d_strided",
		nameR2C: name + "_r2c",
	}
}

// Model returns the underlying GPU cost model.
func (d *Device) Model() *machine.GPU { return d.model }

// FFTName returns the vendor FFT library name ("cufft" or "rocfft").
func (d *Device) FFTName() string { return d.fftName }

func (d *Device) charge(name string, dt float64, bytes int) {
	start := d.comm.Clock()
	d.comm.Advance(dt)
	d.comm.Tracer().Record(trace.Event{
		Rank: d.comm.WorldRank(d.comm.Rank()), Name: name,
		Start: start, End: start + dt, Bytes: bytes,
	})
}

// FFT1D charges a batch of 1-D transforms of length n. strided marks
// non-unit-stride input, which pays the Fig. 10 spike.
func (d *Device) FFT1D(n, batch int, strided bool) {
	if batch == 0 {
		return
	}
	name := d.name1D
	if strided {
		name = d.name1DStrided
	}
	d.charge(name, d.model.FFT1DCost(n, batch, strided), 16*n*batch)
}

// FFTR2C charges a batch of real-to-complex (or complex-to-real) 1-D
// transforms of real length n.
func (d *Device) FFTR2C(n, batch int) {
	if batch == 0 {
		return
	}
	d.charge(d.nameR2C, d.model.FFTR2CCost(n, batch), 8*n*batch)
}

// FFT2D charges a batch of 2-D n0×n1 transforms (slab decomposition).
func (d *Device) FFT2D(n0, n1, batch int, strided bool) {
	if batch == 0 {
		return
	}
	name := d.name2D
	if strided {
		name = d.name2DStrided
	}
	d.charge(name, d.model.FFT2DCost(n0, n1, batch, strided), 16*n0*n1*batch)
}

// Pack charges a packing kernel over the given bytes. transposed marks the
// "contiguous/transposed" local-FFT path, where packing doubles as an axis
// transposition and costs more (Figs. 6 and 7 left panels).
func (d *Device) Pack(bytes int, transposed bool) {
	if bytes == 0 {
		return
	}
	cost := d.model.PackCost(bytes)
	if transposed {
		cost = d.model.ReorderCost(bytes)
	}
	d.charge("pack", cost, bytes)
}

// Unpack charges an unpacking kernel; see Pack for the transposed flag.
func (d *Device) Unpack(bytes int, transposed bool) {
	if bytes == 0 {
		return
	}
	cost := d.model.PackCost(bytes)
	if transposed {
		cost = d.model.ReorderCost(bytes)
	}
	d.charge("unpack", cost, bytes)
}

// Reorder charges an on-device transposition making an FFT axis contiguous
// (the "transposed/contiguous" local-FFT path of Figs. 6 and 7).
func (d *Device) Reorder(bytes int) {
	if bytes == 0 {
		return
	}
	d.charge("reorder", d.model.ReorderCost(bytes), bytes)
}

// Copy charges a device↔host transfer (outside MPI, e.g. result download).
func (d *Device) Copy(bytes int) {
	if bytes == 0 {
		return
	}
	d.charge("copy", d.model.CopyCost(bytes), bytes)
}

// Checksum charges a checksum/sum-reduction pass over the given bytes (ABFT
// invariant evaluation, envelope sums fused into pack/unpack streams).
func (d *Device) Checksum(bytes int) {
	if bytes == 0 {
		return
	}
	d.charge("checksum", d.model.ChecksumCost(bytes), bytes)
}

// Convert charges a fused precision-conversion pass (wire compression:
// float64↔float32/half casts riding inside a pack or unpack kernel). bytes is
// the full-precision side of the stream; the narrow wire bytes are billed by
// the Pack/Unpack charge the pass fuses into.
func (d *Device) Convert(bytes int) {
	if bytes == 0 {
		return
	}
	d.charge("convert", d.model.ConvertCost(bytes), bytes)
}

// Retain charges the fused snapshot+sum pass that copies a phase input aside
// for phase-scoped re-execution while computing its checksum vector.
func (d *Device) Retain(bytes int) {
	if bytes == 0 {
		return
	}
	d.charge("retain", d.model.RetainCost(bytes), bytes)
}

// Pointwise charges an elementwise kernel (scaling, spectral convolution).
func (d *Device) Pointwise(bytes int) {
	if bytes == 0 {
		return
	}
	d.charge("pointwise", d.model.PointwiseCost(bytes), bytes)
}
