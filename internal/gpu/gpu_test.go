package gpu

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/mpisim"
	"repro/internal/trace"
)

// withDevice runs f on rank 0 of a single-rank world and returns the tracer.
func withDevice(t *testing.T, m *machine.Model, f func(d *Device, c *mpisim.Comm)) *trace.Tracer {
	t.Helper()
	tr := trace.New()
	w := mpisim.NewWorld(m, 1, mpisim.Options{Tracer: tr})
	w.Run(func(c *mpisim.Comm) { f(New(c), c) })
	return tr
}

func TestVendorNameByMachine(t *testing.T) {
	withDevice(t, machine.Summit(), func(d *Device, c *mpisim.Comm) {
		if d.FFTName() != "cufft" {
			t.Errorf("Summit FFT name = %s", d.FFTName())
		}
	})
	withDevice(t, machine.Spock(), func(d *Device, c *mpisim.Comm) {
		if d.FFTName() != "rocfft" {
			t.Errorf("Spock FFT name = %s", d.FFTName())
		}
	})
}

func TestKernelsAdvanceClockAndTrace(t *testing.T) {
	tr := withDevice(t, machine.Summit(), func(d *Device, c *mpisim.Comm) {
		before := c.Clock()
		d.FFT1D(512, 100, false)
		d.FFT1D(512, 100, true)
		d.FFT2D(64, 64, 4, false)
		d.Pack(1<<20, false)
		d.Unpack(1<<20, true)
		d.Reorder(1 << 16)
		d.Copy(1 << 16)
		d.Pointwise(1 << 16)
		if c.Clock() <= before {
			t.Error("kernels did not advance the clock")
		}
	})
	totals := tr.TotalByName(0)
	for _, name := range []string{"cufft_1d", "cufft_1d_strided", "cufft_2d", "pack", "unpack", "reorder", "copy", "pointwise"} {
		if totals[name] <= 0 {
			t.Errorf("missing trace for %s (have %v)", name, tr.Names())
		}
	}
}

func TestZeroWorkIsFree(t *testing.T) {
	tr := withDevice(t, machine.Summit(), func(d *Device, c *mpisim.Comm) {
		d.FFT1D(512, 0, false)
		d.FFT2D(8, 8, 0, true)
		d.Pack(0, false)
		d.Unpack(0, true)
		d.Reorder(0)
		d.Copy(0)
		d.Pointwise(0)
		if c.Clock() != 0 {
			t.Errorf("zero work advanced clock to %g", c.Clock())
		}
	})
	if len(tr.Events()) != 0 {
		t.Errorf("zero work recorded %d events", len(tr.Events()))
	}
}

func TestTransposedPackCostsMore(t *testing.T) {
	var plain, transposed float64
	withDevice(t, machine.Summit(), func(d *Device, c *mpisim.Comm) {
		t0 := c.Clock()
		d.Pack(1<<20, false)
		plain = c.Clock() - t0
		t0 = c.Clock()
		d.Pack(1<<20, true)
		transposed = c.Clock() - t0
	})
	if transposed <= plain {
		t.Errorf("transposed pack %g should exceed plain pack %g", transposed, plain)
	}
}
