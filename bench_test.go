// Package repro's top-level benchmarks regenerate each table and figure of
// the paper through the internal/bench harness (quick mode, so `go test
// -bench=.` completes in minutes; run `fftbench -exp <id>` for paper-scale
// sweeps). One benchmark per experiment, named after the paper artifact.
package repro

import (
	"io"
	"testing"

	"repro/internal/bench"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := bench.Run(id, io.Discard, bench.RunOptions{Quick: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Capabilities(b *testing.B)      { benchExperiment(b, "table1") }
func BenchmarkTable2SoftwareStack(b *testing.B)     { benchExperiment(b, "table2") }
func BenchmarkTable3GridSequence(b *testing.B)      { benchExperiment(b, "table3") }
func BenchmarkFig02AlltoallFlavours(b *testing.B)   { benchExperiment(b, "fig2") }
func BenchmarkFig03PointToPoint(b *testing.B)       { benchExperiment(b, "fig3") }
func BenchmarkFig04AverageBandwidth(b *testing.B)   { benchExperiment(b, "fig4") }
func BenchmarkFig05BestSettingRegions(b *testing.B) { benchExperiment(b, "fig5") }
func BenchmarkFig06AlltoallBreakdown(b *testing.B)  { benchExperiment(b, "fig6") }
func BenchmarkFig07P2PBreakdown(b *testing.B)       { benchExperiment(b, "fig7") }
func BenchmarkFig08AlltoallScaling(b *testing.B)    { benchExperiment(b, "fig8") }
func BenchmarkFig09P2PScaling(b *testing.B)         { benchExperiment(b, "fig9") }
func BenchmarkFig10StridedCuFFTSpike(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkFig11GPUAwareEffect(b *testing.B)     { benchExperiment(b, "fig11") }
func BenchmarkFig12LammpsRhodopsin(b *testing.B)    { benchExperiment(b, "fig12") }
func BenchmarkFig13BatchedTransforms(b *testing.B)  { benchExperiment(b, "fig13") }
func BenchmarkAblationGridShrinking(b *testing.B)   { benchExperiment(b, "shrink") }
func BenchmarkAblationDecompSweep(b *testing.B)     { benchExperiment(b, "decomp") }
func BenchmarkModelValidation(b *testing.B)         { benchExperiment(b, "modelcheck") }
func BenchmarkWarpXRedistribution(b *testing.B)     { benchExperiment(b, "warpx") }
func BenchmarkFrontierProjection(b *testing.B)      { benchExperiment(b, "frontier") }
func BenchmarkAsyncBatchingModes(b *testing.B)      { benchExperiment(b, "async") }
func BenchmarkRealToComplex(b *testing.B)           { benchExperiment(b, "r2c") }
