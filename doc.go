// Package repro reproduces "Performance Analysis of Parallel FFT on Large
// Multi-GPU Systems" (A. Ayala, S. Tomov, M. Stoyanov, A. Haidar,
// J. Dongarra — IPDPSW 2022) as a pure-Go system: a heFFTe-like distributed
// 3-D FFT (package heffte / internal/core) running on a virtual-time MPI
// simulator (internal/mpisim) over calibrated Summit/Spock hardware models
// (internal/machine), with the paper's bandwidth model (internal/model),
// tuning methodology (internal/tuning), application proxies (internal/apps)
// and a benchmark harness regenerating every table and figure
// (internal/bench, cmd/fftbench).
//
// The heffte facade is the entire public surface — programs never import
// repro/internal/... directly. Beyond plan construction (Config literals or
// functional options via NewPlanWith), it exposes tuning (Tune,
// DefaultCandidates, Best), the bandwidth model (SlabTime, PencilTime,
// PhaseDiagram), trace export (WriteChromeFile), and typed sentinel errors
// (ErrBadConfig, ErrMismatchedBoxes, ErrPlanClosed) that classify failures
// through errors.Is.
//
// Under the facade, the execution engine keeps the host-side hot path
// allocation-free: staging buffers come from a process-wide size-class pool
// and move through the simulator with ownership transfer instead of
// defensive copies; FFT kernel plans (twiddles, bit-reversal tables) are
// cached per plan axis; and batched transforms fan out over a bounded
// worker pool shared across rank goroutines. Steady-state Forward/Inverse
// performs zero allocations (asserted by testing.AllocsPerRun), while
// virtual-time results are unchanged — simulated costs depend only on bytes
// and location, never on buffer ownership.
//
// One layer above the facade, heffte/serve turns the batched engine into a
// concurrent FFT service: a long-lived Server coalesces same-shape requests
// from independent goroutines into fused batched executions on a shape-keyed
// LRU of resident plans, with admission control (ErrOverloaded), deadline
// propagation (ErrDeadlineExceeded), and per-shape throughput/latency
// instrumentation. The generic scheduler core lives in internal/sched;
// cmd/fftserve drives synthetic open-loop load against it (BENCH_PR2.json
// records the coalescing-vs-one-plan-per-request comparison).
//
// The simulator also injects the failure modes of large systems: a seeded,
// reproducible fault plan (GenerateFaults, internal/faults) schedules link
// degradation, stalls, dropped/corrupted messages and rank kills, surfaced
// as typed errors (ErrRankFailed, ErrMessageCorrupt, ErrExchangeTimeout)
// with rank and pipeline-phase context instead of silent hangs — a
// per-exchange virtual-time bound guarantees a stalled or dead peer becomes
// a bounded error under every exchange strategy. The serving layer recovers:
// fault-failed batches retry on rebuilt engines with backoff and batch
// splitting, persistent failures trip a per-shape circuit breaker into a
// degraded fresh-plan-per-request mode, and all of it is visible in
// Server.Stats. `fftserve -chaos` replays a seeded fault schedule under
// verified load and asserts zero lost or corrupted responses.
//
// See README.md for a tour and DESIGN.md for the system inventory.
package repro
