// Package repro reproduces "Performance Analysis of Parallel FFT on Large
// Multi-GPU Systems" (A. Ayala, S. Tomov, M. Stoyanov, A. Haidar,
// J. Dongarra — IPDPSW 2022) as a pure-Go system: a heFFTe-like distributed
// 3-D FFT (package heffte / internal/core) running on a virtual-time MPI
// simulator (internal/mpisim) over calibrated Summit/Spock hardware models
// (internal/machine), with the paper's bandwidth model (internal/model),
// tuning methodology (internal/tuning), application proxies (internal/apps)
// and a benchmark harness regenerating every table and figure
// (internal/bench, cmd/fftbench).
//
// See README.md for a tour and DESIGN.md for the system inventory.
package repro
