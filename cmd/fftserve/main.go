// Command fftserve drives synthetic load against the serving layer
// (heffte/serve): an open-loop Poisson arrival process, or a closed loop of
// concurrent submitters, over one or more transform shapes. It prints
// achieved throughput, client-side p50/p99 latency, mean coalesced batch
// size, and the server's stats report.
//
// The -mode flag selects the execution path under the same load:
//
//	serve    requests go through serve.Server: shape-keyed coalescing into
//	         fused batches on cached resident plans
//	perplan  every request builds its own world + plan, runs one Forward,
//	         and tears both down — the one-request-per-plan baseline
//
// Usage:
//
//	fftserve                                  # open-loop Poisson load, serve mode
//	fftserve -mode perplan -rate 100          # same load against the baseline
//	fftserve -bench -json BENCH_PR2.json      # serve vs perplan comparison
//	fftserve -smoke                           # small CI run (exit 1 on failure)
//	fftserve -chaos -seed 7                   # seeded fault-injection run
//	fftserve -chaos -smoke                    # small chaos run for CI
//	fftserve -chaos-elastic -seed 5           # kill storms vs shrink+resume
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/heffte"
	"repro/heffte/serve"
)

func main() {
	var (
		shapes   = flag.String("shapes", "64x64x64", "comma-separated global grids, e.g. 64x64x64,32x32x32")
		ranks    = flag.Int("ranks", 8, "world size of each engine (and of the perplan worlds)")
		mode     = flag.String("mode", "serve", "execution path: serve | perplan")
		rate     = flag.Float64("rate", 2000, "open-loop Poisson arrival rate, requests/sec (0 = closed loop)")
		duration = flag.Duration("duration", 5*time.Second, "open-loop run length")
		clients  = flag.Int("clients", 16, "concurrent submitters (closed loop) / in-flight cap (open loop)")
		requests = flag.Int("requests", 256, "total requests in closed-loop mode")
		window   = flag.Duration("window", 200*time.Microsecond, "server coalescing window")
		maxBatch = flag.Int("maxbatch", 16, "server max fused batch size")
		workers  = flag.Int("workers", 2, "server worker pool size")
		queue    = flag.Int("queue", 256, "server admission bound (MaxQueue)")
		deadline = flag.Duration("deadline", 0, "per-request deadline (0 = none)")
		seed     = flag.Int64("seed", 1, "load-generator seed")
		stats    = flag.Bool("stats", false, "print the server stats report after the run")
		bench    = flag.Bool("bench", false, "run serve AND perplan under identical load, report speedup")
		jsonOut  = flag.String("json", "", "with -bench: write the comparison as JSON to this file")
		smoke    = flag.Bool("smoke", false, "small self-checking run for CI")
		chaos    = flag.Bool("chaos", false, "seeded fault-injection run: verified load against faulty engines (exit 1 on any lost/corrupted response); -smoke shrinks it for CI")
		chaosSDC = flag.Bool("chaos-sdc", false, "seeded silent-data-corruption run: bit-flipping GPUs under verified load with the integrity defenses armed (exit 1 on any wrong answer); -smoke shrinks it for CI")
		chaosEl  = flag.Bool("chaos-elastic", false, "seeded kill-storm run against an elastic server: verified load while engines shrink to survivors and resume (exit 1 on any lost/corrupted response, or if either the Resumed or Restarted path never fires); -smoke shrinks it for CI")
	)
	flag.Parse()

	if *chaos || *chaosSDC || *chaosEl {
		if *chaos {
			if err := runChaos(*seed, *smoke); err != nil {
				fmt.Fprintln(os.Stderr, "fftserve: chaos FAILED:", err)
				os.Exit(1)
			}
		}
		if *chaosSDC {
			if err := runChaosSDC(*seed, *smoke); err != nil {
				fmt.Fprintln(os.Stderr, "fftserve: chaos-sdc FAILED:", err)
				os.Exit(1)
			}
		}
		if *chaosEl {
			if err := runChaosElastic(*seed, *smoke); err != nil {
				fmt.Fprintln(os.Stderr, "fftserve: chaos-elastic FAILED:", err)
				os.Exit(1)
			}
		}
		return
	}

	if *smoke {
		if err := runSmoke(); err != nil {
			fmt.Fprintln(os.Stderr, "fftserve: smoke FAILED:", err)
			os.Exit(1)
		}
		fmt.Println("SMOKE OK")
		return
	}

	globals, err := parseShapes(*shapes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fftserve:", err)
		os.Exit(2)
	}
	lc := loadConfig{
		globals:  globals,
		ranks:    *ranks,
		rate:     *rate,
		duration: *duration,
		clients:  *clients,
		requests: *requests,
		window:   *window,
		maxBatch: *maxBatch,
		workers:  *workers,
		queue:    *queue,
		deadline: *deadline,
		seed:     *seed,
	}

	if *bench {
		if err := runBench(lc, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "fftserve:", err)
			os.Exit(1)
		}
		return
	}

	res, srvStats, err := runLoad(*mode, lc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fftserve:", err)
		os.Exit(1)
	}
	printReport(*mode, lc, res)
	if *stats && srvStats != nil {
		fmt.Println()
		srvStats.WriteText(os.Stdout)
	}
}

// ---------------------------------------------------------------------------
// Configuration

type loadConfig struct {
	globals  [][3]int
	ranks    int
	rate     float64 // 0 => closed loop
	duration time.Duration
	clients  int
	requests int
	window   time.Duration
	maxBatch int
	workers  int
	queue    int
	deadline time.Duration
	seed     int64
}

func parseShapes(s string) ([][3]int, error) {
	var out [][3]int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var g [3]int
		if n, err := fmt.Sscanf(part, "%dx%dx%d", &g[0], &g[1], &g[2]); n != 3 || err != nil {
			return nil, fmt.Errorf("bad shape %q (want N0xN1xN2)", part)
		}
		out = append(out, g)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no shapes given")
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Executors: the serve path and the one-plan-per-request baseline

// executor runs one forward transform of global in place on data.
type executor func(global [3]int, data []complex128) error

func serveExecutor(srv *serve.Server, deadline time.Duration) executor {
	return func(global [3]int, data []complex128) error {
		ctx := context.Background()
		if deadline > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, deadline)
			defer cancel()
		}
		return srv.Submit(ctx, &serve.Request{Global: global, Data: data})
	}
}

// perPlanExecutor is the baseline the serving layer exists to beat: every
// request spins up a world, creates a plan collectively, runs a single
// Forward, and tears everything down.
func perPlanExecutor(m *heffte.Machine, ranks int) executor {
	return func(global [3]int, data []complex128) error {
		fields := serve.Scatter(global, data, heffte.DefaultBricks(ranks, global))
		errs := make([]error, ranks)
		w := heffte.NewWorld(m, ranks, heffte.WorldOptions{GPUAware: true})
		w.Run(func(c *heffte.Comm) {
			plan, err := heffte.NewPlan(c, heffte.Config{Global: global})
			if err != nil {
				errs[c.Rank()] = err
				return
			}
			defer plan.Close()
			errs[c.Rank()] = plan.Forward(fields[c.Rank()])
		})
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		serve.Gather(global, data, fields)
		return nil
	}
}

// ---------------------------------------------------------------------------
// Load generation

type result struct {
	completed int64
	rejected  int64
	deadlined int64
	failed    int64
	dropped   int64 // open loop: arrivals shed because the in-flight cap was hit
	wall      time.Duration
	latencies []time.Duration
	meanBatch float64 // serve mode only
}

func (r *result) record(start time.Time, err error) {
	lat := time.Since(start)
	switch {
	case err == nil:
		atomic.AddInt64(&r.completed, 1)
	case isOverloaded(err):
		atomic.AddInt64(&r.rejected, 1)
	case isDeadline(err):
		atomic.AddInt64(&r.deadlined, 1)
	default:
		atomic.AddInt64(&r.failed, 1)
	}
	if err == nil {
		latMu.Lock()
		r.latencies = append(r.latencies, lat)
		latMu.Unlock()
	}
}

var latMu sync.Mutex

func isOverloaded(err error) bool { return errors.Is(err, heffte.ErrOverloaded) }
func isDeadline(err error) bool   { return errors.Is(err, heffte.ErrDeadlineExceeded) }

// slot is one reusable request buffer bound to a fixed shape; slots bound
// memory in both loop styles.
type slot struct {
	global [3]int
	data   []complex128
}

func makeSlots(lc loadConfig) []*slot {
	slots := make([]*slot, lc.clients)
	rng := rand.New(rand.NewSource(lc.seed))
	for i := range slots {
		g := lc.globals[i%len(lc.globals)]
		vol := g[0] * g[1] * g[2]
		data := make([]complex128, vol)
		for j := range data {
			data[j] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
		}
		slots[i] = &slot{global: g, data: data}
	}
	return slots
}

// openLoop fires arrivals at Poisson times independent of completions. A
// bounded pool of slots caps in-flight requests: an arrival that finds no
// free slot is shed at the source (counted, not queued), so the generator
// stays open-loop without unbounded memory.
func openLoop(exec executor, lc loadConfig) result {
	var res result
	pool := make(chan *slot, lc.clients)
	for _, s := range makeSlots(lc) {
		pool <- s
	}
	rng := rand.New(rand.NewSource(lc.seed + 7919))
	var wg sync.WaitGroup
	start := time.Now()
	next := start
	for {
		next = next.Add(time.Duration(rng.ExpFloat64() / lc.rate * float64(time.Second)))
		if next.Sub(start) >= lc.duration {
			break
		}
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		select {
		case s := <-pool:
			wg.Add(1)
			go func(s *slot) {
				defer wg.Done()
				t0 := time.Now()
				res.record(t0, exec(s.global, s.data))
				pool <- s
			}(s)
		default:
			res.dropped++
		}
	}
	wg.Wait()
	res.wall = time.Since(start)
	return res
}

// closedLoop runs lc.clients submitters back-to-back until lc.requests have
// been issued.
func closedLoop(exec executor, lc loadConfig) result {
	var res result
	var issued int64
	var wg sync.WaitGroup
	start := time.Now()
	for _, s := range makeSlots(lc) {
		wg.Add(1)
		go func(s *slot) {
			defer wg.Done()
			for atomic.AddInt64(&issued, 1) <= int64(lc.requests) {
				t0 := time.Now()
				res.record(t0, exec(s.global, s.data))
			}
		}(s)
	}
	wg.Wait()
	res.wall = time.Since(start)
	return res
}

// runLoad builds the executor for mode, runs the configured loop, and (in
// serve mode) harvests the server stats.
func runLoad(mode string, lc loadConfig) (result, *serve.Stats, error) {
	var exec executor
	var srv *serve.Server
	switch mode {
	case "serve":
		srv = serve.New(serve.Config{
			Ranks:    lc.ranks,
			Window:   lc.window,
			MaxBatch: lc.maxBatch,
			Workers:  lc.workers,
			MaxQueue: lc.queue,
		})
		defer srv.Close()
		exec = serveExecutor(srv, lc.deadline)
	case "perplan":
		exec = perPlanExecutor(heffte.Summit(), lc.ranks)
	default:
		return result{}, nil, fmt.Errorf("unknown -mode %q (want serve or perplan)", mode)
	}

	var res result
	if lc.rate > 0 {
		res = openLoop(exec, lc)
	} else {
		res = closedLoop(exec, lc)
	}
	if srv != nil {
		st := srv.Stats()
		res.meanBatch = st.Scheduler.Total.MeanBatch()
		return res, &st, nil
	}
	return res, nil, nil
}

// ---------------------------------------------------------------------------
// Reporting

func quantile(lats []time.Duration, q float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

func printReport(mode string, lc loadConfig, res result) {
	loop := "closed"
	if lc.rate > 0 {
		loop = fmt.Sprintf("open (Poisson %.0f req/s)", lc.rate)
	}
	fmt.Printf("mode=%s shapes=%s ranks=%d loop=%s clients=%d window=%s maxbatch=%d\n",
		mode, shapeNames(lc.globals), lc.ranks, loop, lc.clients, lc.window, lc.maxBatch)
	fmt.Printf("requests: %d completed, %d rejected, %d deadline-exceeded, %d failed, %d shed at source\n",
		res.completed, res.rejected, res.deadlined, res.failed, res.dropped)
	rps := float64(res.completed) / res.wall.Seconds()
	fmt.Printf("wall %s  throughput %.1f req/s\n", res.wall.Round(time.Millisecond), rps)
	fmt.Printf("latency p50 %s  p99 %s\n",
		quantile(res.latencies, 0.50).Round(10*time.Microsecond),
		quantile(res.latencies, 0.99).Round(10*time.Microsecond))
	if mode == "serve" {
		fmt.Printf("mean batch %.2f\n", res.meanBatch)
	}
}

func shapeNames(globals [][3]int) string {
	parts := make([]string, len(globals))
	for i, g := range globals {
		parts[i] = fmt.Sprintf("%dx%dx%d", g[0], g[1], g[2])
	}
	return strings.Join(parts, ",")
}

// ---------------------------------------------------------------------------
// Bench: serve vs perplan under identical load

type benchSide struct {
	ReqsPerSec float64 `json:"reqs_per_sec"`
	Completed  int64   `json:"completed"`
	Shed       int64   `json:"shed_at_source"`
	Rejected   int64   `json:"rejected"`
	P50Ms      float64 `json:"p50_ms"`
	P99Ms      float64 `json:"p99_ms"`
	MeanBatch  float64 `json:"mean_batch,omitempty"`
}

type benchReport struct {
	Description string            `json:"description"`
	Host        string            `json:"host"`
	Config      map[string]any    `json:"config"`
	Serve       benchSide         `json:"serve"`
	PerPlan     benchSide         `json:"perplan"`
	Speedup     float64           `json:"speedup"`
	Modes       map[string]string `json:"modes"`
}

func sideOf(res result) benchSide {
	return benchSide{
		ReqsPerSec: float64(res.completed) / res.wall.Seconds(),
		Completed:  res.completed,
		Shed:       res.dropped,
		Rejected:   res.rejected,
		P50Ms:      float64(quantile(res.latencies, 0.50)) / float64(time.Millisecond),
		P99Ms:      float64(quantile(res.latencies, 0.99)) / float64(time.Millisecond),
		MeanBatch:  res.meanBatch,
	}
}

func runBench(lc loadConfig, jsonPath string) error {
	fmt.Printf("bench: %s ranks=%d, open-loop %.0f req/s for %s per mode, %d-slot in-flight cap\n",
		shapeNames(lc.globals), lc.ranks, lc.rate, lc.duration, lc.clients)

	fmt.Println("-- mode=serve")
	serveRes, _, err := runLoad("serve", lc)
	if err != nil {
		return err
	}
	printReport("serve", lc, serveRes)

	fmt.Println("-- mode=perplan")
	perRes, _, err := runLoad("perplan", lc)
	if err != nil {
		return err
	}
	printReport("perplan", lc, perRes)

	sv, pp := sideOf(serveRes), sideOf(perRes)
	speedup := sv.ReqsPerSec / pp.ReqsPerSec
	fmt.Printf("-- speedup (serve/perplan): %.2fx\n", speedup)

	if jsonPath == "" {
		return nil
	}
	rep := benchReport{
		Description: "Batched-service throughput vs one-plan-per-request under identical open-loop Poisson load. Both modes see the same arrival process with the same in-flight cap; excess arrivals are shed at the source. reqs_per_sec is completed requests over wall time. Command: go run ./cmd/fftserve -bench with the recorded config.",
		Host:        fmt.Sprintf("%s/%s, %d CPU core(s)", runtime.GOOS, runtime.GOARCH, runtime.NumCPU()),
		Config: map[string]any{
			"shapes":     shapeNames(lc.globals),
			"ranks":      lc.ranks,
			"rate_per_s": lc.rate,
			"duration":   lc.duration.String(),
			"clients":    lc.clients,
			"window":     lc.window.String(),
			"max_batch":  lc.maxBatch,
			"workers":    lc.workers,
			"max_queue":  lc.queue,
			"seed":       lc.seed,
		},
		Serve:   sv,
		PerPlan: pp,
		Speedup: speedup,
		Modes: map[string]string{
			"serve":   "serve.Server: shape-keyed coalescing into fused ForwardBatch executions on cached resident plans",
			"perplan": "per request: NewWorld + collective NewPlan + single Forward + teardown",
		},
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(jsonPath, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", jsonPath)
	return nil
}

// ---------------------------------------------------------------------------
// Smoke: a fast self-checking pass for CI

func runSmoke() error {
	lc := loadConfig{
		globals:  [][3]int{{16, 16, 16}},
		ranks:    4,
		rate:     0, // closed loop: deterministic request count
		clients:  8,
		requests: 32,
		window:   2 * time.Millisecond,
		maxBatch: 8,
		workers:  2,
		queue:    64,
		seed:     1,
	}
	res, st, err := runLoad("serve", lc)
	if err != nil {
		return err
	}
	printReport("serve", lc, res)
	if res.completed != int64(lc.requests) {
		return fmt.Errorf("serve: completed %d of %d", res.completed, lc.requests)
	}
	if got := st.Scheduler.Total.Completed; got != uint64(lc.requests) {
		return fmt.Errorf("server stats disagree: Completed = %d", got)
	}

	// Exercise the baseline path too, briefly.
	lc.requests, lc.clients = 4, 2
	res, _, err = runLoad("perplan", lc)
	if err != nil {
		return err
	}
	printReport("perplan", lc, res)
	if res.completed != 4 {
		return fmt.Errorf("perplan: completed %d of 4", res.completed)
	}
	return nil
}
