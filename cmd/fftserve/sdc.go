package main

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"repro/heffte"
	"repro/heffte/serve"
)

// Silent-data-corruption chaos mode (-chaos-sdc): bit-flipping "GPUs" pinned
// to physical slots corrupt wire payloads and device bricks while verified
// load runs with the integrity defenses armed. The run proves the whole
// defense in depth — checksummed transport catches and retransmits corrupted
// blocks, ABFT phase invariants catch device flips and re-execute the phase,
// the health ledger quarantines the persistently bad slot and rebuilds
// engines around it — and asserts that not one wrong answer ever reaches a
// client: every delivered spectrum is bit-identical to a clean-run reference.
//
// Determinism: fault schedules are pure functions of the slot assignment the
// server reports to the EngineFaultsOn hook, so identical seeds replay
// identical schedules; fingerprints are printed for cross-run comparison.

var sdcShape = [3]int{16, 16, 16}

// sdcPlan builds the schedule for an engine whose rank→slot map is given:
// the rank occupying badSlot has every send silently corrupted (count
// consecutive corrupt transmissions per block) and its device brick flipped
// between the first FFT phases (healed by one phase re-execution). Engines
// placed away from badSlot run clean.
func sdcPlan(slots []int, badSlot, count int) *heffte.FaultPlan {
	for r, sl := range slots {
		if sl != badSlot {
			continue
		}
		fp := &heffte.FaultPlan{Timeout: 1}
		for op := 0; op < 64; op++ {
			fp.Events = append(fp.Events, heffte.FaultEvent{
				Kind: heffte.FaultCorruptSilent, Rank: r, Op: op, Count: count,
			})
		}
		fp.Events = append(fp.Events, heffte.FaultEvent{
			Kind: heffte.FaultCorruptSilent, Brick: true, Rank: r, Op: 0, Count: 1,
		})
		return fp
	}
	return nil
}

func runChaosSDC(seed int64, smoke bool) error {
	const ranks = 4
	load := 64
	if smoke {
		load = 24
	}

	var planMu sync.Mutex
	mkServer := func(badSlot, count, retries int) *serve.Server {
		return serve.New(serve.Config{
			Ranks:               ranks,
			Window:              3 * time.Millisecond,
			MaxBatch:            8,
			Workers:             2,
			MaxRetries:          retries,
			RetryBackoff:        100 * time.Microsecond,
			RetryBackoffCap:     time.Millisecond,
			Integrity:           heffte.IntegrityConfig{Checksums: true, Invariants: true},
			QuarantineThreshold: 3,
			EngineFaultsOn: func(shape string, build int, slots []int) *heffte.FaultPlan {
				plan := sdcPlan(slots, badSlot, count)
				planMu.Lock()
				fmt.Printf("chaos-sdc: engine build %d for %s on slots %v: %s [fingerprint %s]\n",
					build, shape, slots, plan, plan.Fingerprint())
				planMu.Unlock()
				return plan
			},
		})
	}

	rng := rand.New(rand.NewSource(seed))
	input := make([]complex128, sdcShape[0]*sdcShape[1]*sdcShape[2])
	for i := range input {
		input[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	expected, err := chaosReference(sdcShape, ranks, input)
	if err != nil {
		return fmt.Errorf("reference transform: %w", err)
	}

	// Phase 1 — repairable corruption under load: the GPU on slot 1 flips one
	// bit in every block it sends (one corrupt transmission each — the
	// transport's retransmit heals it) and in its device brick between phases
	// (one phase re-execution heals it). Requests keep succeeding bit-exactly
	// while suspicion piles onto slot 1 until quarantine rebuilds around it.
	fmt.Println("chaos-sdc: phase 1 — repairable flips under verified load")
	srv := mkServer(1, 1, 2)
	var mismatched int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make([]error, 4)
	perClient := (load + len(errs) - 1) / len(errs)
	for c := range errs {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			buf := make([]complex128, len(input))
			for i := 0; i < perClient; i++ {
				copy(buf, input)
				if err := srv.Submit(context.Background(), &serve.Request{Global: sdcShape, Data: buf}); err != nil {
					errs[c] = fmt.Errorf("submit under repairable corruption: %w", err)
					return
				}
				if !equalComplex(buf, expected) {
					mu.Lock()
					mismatched++
					mu.Unlock()
					errs[c] = fmt.Errorf("wrong answer delivered")
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			srv.Close()
			return err
		}
	}
	st := srv.Stats()
	srv.Close()
	in := st.Integrity
	st.WriteText(os.Stdout)
	for _, c := range []struct {
		name string
		got  int64
	}{
		{"envelope mismatch", in.Totals.ChecksumMismatches},
		{"retransmit", in.Totals.Retransmits},
		{"invariant failure", in.Totals.InvariantFailures},
		{"phase re-execution", in.Totals.PhaseReexecs},
		{"quarantine", int64(in.Quarantines)},
		{"quarantine rebuild", int64(in.QuarantineRebuilds)},
	} {
		if c.got == 0 {
			return fmt.Errorf("chaos-sdc: expected at least one %s, got none", c.name)
		}
	}

	// Phase 2 — unrepairable link: slot 2's sends stay corrupt past the
	// retransmit budget. The batch fails with the typed sentinel (never wrong
	// data), the failed run's suspicion quarantines the slot, and the
	// server-side retry succeeds on an engine rebuilt around it.
	fmt.Println("chaos-sdc: phase 2 — budget exhaustion, then surgical rebuild")
	srv = mkServer(2, 4, 2)
	defer srv.Close()
	buf := append([]complex128(nil), input...)
	if err := srv.Submit(context.Background(), &serve.Request{Global: sdcShape, Data: buf}); err != nil {
		return fmt.Errorf("submit with hard corruption not recovered by rebuild: %w", err)
	}
	if !equalComplex(buf, expected) {
		mismatched++
		return fmt.Errorf("chaos-sdc: wrong answer after rebuild recovery")
	}
	st2 := srv.Stats()
	st2.WriteText(os.Stdout)
	if st2.Recovery.Retries == 0 {
		return fmt.Errorf("chaos-sdc: hard corruption recovered without a server-side retry?")
	}
	if st2.Integrity.Quarantines == 0 {
		return fmt.Errorf("chaos-sdc: hard corruption never quarantined the slot")
	}

	// A direct probe of the typed sentinel: with retries disabled the client
	// sees ErrRetransmitExhausted, not data.
	srvNR := mkServer(3, 4, -1)
	defer srvNR.Close()
	probe := append([]complex128(nil), input...)
	err = srvNR.Submit(context.Background(), &serve.Request{Global: sdcShape, Data: probe})
	if !errors.Is(err, heffte.ErrRetransmitExhausted) {
		return fmt.Errorf("chaos-sdc: no-retry submit = %v, want ErrRetransmitExhausted", err)
	}

	if mismatched != 0 {
		return fmt.Errorf("chaos-sdc: %d wrong answers delivered", mismatched)
	}
	fmt.Printf("CHAOS-SDC OK seed=%d (0 wrong answers; mismatches=%d retransmits=%d reexecs=%d quarantines=%d)\n",
		seed, in.Totals.ChecksumMismatches, in.Totals.Retransmits, in.Totals.PhaseReexecs, in.Quarantines)
	return nil
}
