package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"time"

	"repro/heffte"
	"repro/heffte/serve"
)

// Elastic chaos mode: seeded kill storms against a server running with
// Config.Elastic, under verified load. The run proves the resume-not-restart
// pipeline end to end — a rank kill mid-batch shrinks the engine's world to
// its survivors and finishes the batch from its last phase checkpoint
// (Resumed), while non-kill fault storms (nothing to shrink to) fall back
// through the evict-and-rebuild path (Restarted) — and asserts that despite
// all of it no response is lost or corrupted, both recovery paths actually
// fired, and the capacity ledger recorded every GPU slot the kills took.
//
// Determinism: fault schedules are pure functions of (-seed, shape, build
// counter), so identical seeds replay identical storms; every plan's
// fingerprint is printed for comparison across runs.

// elasticShapes: the resumable shape eats two staggered kills (one on the
// first batch, one landing mid-steady-load on the already-shrunken world) and
// keeps its engine; the storm shape suffers faults with no dead ranks, which
// elastic recovery cannot shrink away, so it must restart.
var (
	elasticPrimary = [3]int{16, 16, 16}
	elasticStorm   = [3]int{24, 24, 24}
)

// elasticKillPlan arms the primary shape's only engine build: a kill at
// rank 1's second exchange (mid-pipeline, phase checkpoints exist) and a
// second kill queued deep on rank 3's op counter, which survives the first
// shrink (remapped onto the survivor world) and fires batches later — the
// engine must resume twice, ending two epochs down.
func elasticKillPlan() *heffte.FaultPlan {
	return &heffte.FaultPlan{Timeout: 0.5, Events: []heffte.FaultEvent{
		{Kind: heffte.FaultKill, Rank: 1, Op: 1},
		{Kind: heffte.FaultKill, Rank: 3, Op: 9},
	}}
}

// elasticStormPlan is the build'th engine schedule for the storm shape: a
// seeded mix of drops, stalls and detected corruptions — fault-class
// failures that leave no dead ranks, so shrink+resume is infeasible and the
// batch goes down the restart path. A guaranteed drop at some rank's first
// exchange makes the build's first batch fail regardless of where the
// sampled events land. Builds past the first two are clean.
func elasticStormPlan(seed int64, ranks, build int) *heffte.FaultPlan {
	p := heffte.GenerateFaults(seed+int64(build)*104729, ranks, heffte.FaultConfig{
		Stalls: 1, Drops: 1, Corrupts: 1, OpHorizon: 6, Timeout: 0.25,
	})
	p.Events = append(p.Events, heffte.FaultEvent{Kind: heffte.FaultDrop, Rank: build % ranks, Op: 0})
	return p
}

func runChaosElastic(seed int64, smoke bool) error {
	const ranks = 4
	mainLoad := 96
	if smoke {
		mainLoad = 32
	}
	primaryPrefix := fmt.Sprintf("%dx%dx%d/", elasticPrimary[0], elasticPrimary[1], elasticPrimary[2])

	var planMu sync.Mutex
	srv := serve.New(serve.Config{
		Ranks:            ranks,
		Elastic:          true,
		Window:           3 * time.Millisecond,
		MaxBatch:         8,
		Workers:          2,
		MaxRetries:       3,
		RetryBackoff:     100 * time.Microsecond,
		RetryBackoffCap:  time.Millisecond,
		BreakerThreshold: 4,
		BreakerCooldown:  50 * time.Millisecond,
		EngineFaults: func(shape string, build int) *heffte.FaultPlan {
			var plan *heffte.FaultPlan
			switch {
			case strings.HasPrefix(shape, primaryPrefix) && build == 0:
				plan = elasticKillPlan()
			case !strings.HasPrefix(shape, primaryPrefix) && build < 2:
				plan = elasticStormPlan(seed, ranks, build)
			default:
				return nil // healthy engine
			}
			planMu.Lock()
			fmt.Printf("chaos-elastic: engine build %d for %s: %s [fingerprint %s]\n",
				build, shape, plan, plan.Fingerprint())
			planMu.Unlock()
			return plan
		},
	})
	defer srv.Close()

	// Inputs and clean-run reference spectra, per shape. Resumed batches run
	// on the shrunken world, but the spectrum is decomposition-independent
	// and the resume path is bit-identical to a clean run by construction, so
	// one reference per shape verifies every phase.
	rng := rand.New(rand.NewSource(seed))
	inputs := map[[3]int][]complex128{}
	expected := map[[3]int][]complex128{}
	for _, g := range [][3]int{elasticPrimary, elasticStorm} {
		in := make([]complex128, g[0]*g[1]*g[2])
		for i := range in {
			in[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
		}
		inputs[g] = in
		ref, err := chaosReference(g, ranks, in)
		if err != nil {
			return fmt.Errorf("reference transform for %v: %w", g, err)
		}
		expected[g] = ref
	}

	var lost, mismatched, clientRetries int64
	var mu sync.Mutex
	submitVerified := func(g [3]int, buf []complex128) error {
		var lastErr error
		for attempt := 0; attempt < 20; attempt++ {
			copy(buf, inputs[g])
			err := srv.Submit(context.Background(), &serve.Request{Global: g, Data: buf})
			if err == nil {
				if !equalComplex(buf, expected[g]) {
					mu.Lock()
					mismatched++
					mu.Unlock()
					return fmt.Errorf("corrupted response for %v", g)
				}
				return nil
			}
			if !heffte.IsFault(err) {
				return fmt.Errorf("non-fault failure for %v: %w", g, err)
			}
			lastErr = err
			mu.Lock()
			clientRetries++
			mu.Unlock()
		}
		mu.Lock()
		lost++
		mu.Unlock()
		return fmt.Errorf("request for %v lost after 20 attempts: %w", g, lastErr)
	}

	// Phase 1 — coalesced burst: four concurrent primary requests land on the
	// armed build-0 engine as one batch. The kill at rank 1 op 1 interrupts
	// it mid-pipeline; the server shrinks the world to its three survivors
	// and finishes the whole batch from its phase checkpoints — no eviction,
	// no client-visible failure.
	fmt.Println("chaos-elastic: phase 1 — kill mid-batch, shrink + resume in place")
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			buf := make([]complex128, len(inputs[elasticPrimary]))
			errs[i] = submitVerified(elasticPrimary, buf)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	// Phase 2 — unresumable storm: fault-class failures with no dead ranks
	// (drops, stalls, detected corruptions) leave nothing to shrink to, so
	// the elastic path declines and the batch restarts on rebuilt engines.
	fmt.Println("chaos-elastic: phase 2 — non-kill storm falls back to restart")
	sbuf := make([]complex128, len(inputs[elasticStorm]))
	for i := 0; i < 3; i++ {
		if err := submitVerified(elasticStorm, sbuf); err != nil {
			return err
		}
	}

	// Phase 3 — steady verified load on the shrunken primary engine. The
	// second queued kill fires mid-load on the epoch-1 world; the engine
	// resumes again and serves the rest of the load two epochs down.
	fmt.Println("chaos-elastic: phase 3 — steady load across the second shrink")
	var issued int64
	var loadErr error
	clients := 4
	wg = sync.WaitGroup{}
	var issuedMu sync.Mutex
	next := func() bool {
		issuedMu.Lock()
		defer issuedMu.Unlock()
		if issued >= int64(mainLoad) {
			return false
		}
		issued++
		return true
	}
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]complex128, len(inputs[elasticPrimary]))
			for next() {
				if err := submitVerified(elasticPrimary, buf); err != nil {
					mu.Lock()
					if loadErr == nil {
						loadErr = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	if loadErr != nil {
		return loadErr
	}

	st := srv.Stats()
	rec := st.Recovery
	fmt.Printf("chaos-elastic: %d client retries, %d lost, %d corrupted\n", clientRetries, lost, mismatched)
	st.WriteText(os.Stdout)
	if rec.Resumed < 1 {
		return fmt.Errorf("chaos-elastic: expected at least one resumed batch, got none")
	}
	if rec.Restarted < 1 {
		return fmt.Errorf("chaos-elastic: expected at least one restarted batch, got none")
	}
	if rec.FaultEvictions < 1 {
		return fmt.Errorf("chaos-elastic: expected at least one fault eviction on the restart path")
	}
	if len(rec.LostSlots) < 1 {
		return fmt.Errorf("chaos-elastic: kills shrank no capacity: LostSlots = %v", rec.LostSlots)
	}
	primary := false
	for _, es := range st.Engines {
		if !strings.HasPrefix(es.Shape, primaryPrefix) {
			continue
		}
		primary = true
		if es.Epoch < 1 || es.Ranks >= ranks || es.Resumed < 1 {
			return fmt.Errorf("chaos-elastic: primary engine %s: epoch %d ranks %d resumed %d, want a resumed survivor world",
				es.Shape, es.Epoch, es.Ranks, es.Resumed)
		}
	}
	if !primary {
		return fmt.Errorf("chaos-elastic: primary engine missing from stats (evicted instead of resumed?)")
	}
	if lost != 0 || mismatched != 0 {
		return fmt.Errorf("chaos-elastic: %d lost, %d corrupted responses", lost, mismatched)
	}
	fmt.Printf("CHAOS-ELASTIC OK seed=%d (0 lost, 0 corrupted; resumed=%d restarted=%d lost-slots=%v retries=%d evictions=%d)\n",
		seed, rec.Resumed, rec.Restarted, rec.LostSlots, rec.Retries, rec.FaultEvictions)
	return nil
}
