package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"time"

	"repro/heffte"
	"repro/heffte/serve"
)

// Chaos mode: a seeded fault schedule injected into the server's engines
// while verified load runs against it. The run proves the recovery pipeline
// end to end — batches fail on killed/stalled/corrupted engines, get split
// and retried on rebuilt worlds, a shape that keeps failing trips its breaker
// into the degraded path — and asserts that despite all of it no response is
// lost (every request eventually completes, with bounded client retries) and
// none is corrupted (every payload matches a clean-run reference spectrum).
//
// Determinism: fault schedules are pure functions of (-seed, shape, build
// counter), so identical seeds replay identical fault sequences; every plan's
// fingerprint is printed for comparison across runs.

// chaosShapes: the primary shape recovers (its first two engine builds are
// faulty, later ones clean); the doomed shape never gets a healthy engine and
// must be carried by the circuit breaker's degraded path.
var (
	chaosPrimary = [3]int{16, 16, 16}
	chaosDoomed  = [3]int{24, 24, 24}
)

// chaosPlan is the fault schedule of the build'th engine for the primary
// shape: a seeded mix of stalls, drops, corruptions and degraded links, plus
// one guaranteed kill at some rank's first exchange so the build's first
// batch fails regardless of where the sampled events land.
func chaosPlan(seed int64, ranks, build int) *heffte.FaultPlan {
	p := heffte.GenerateFaults(seed+int64(build)*7919, ranks, heffte.FaultConfig{
		Stalls: 1, Drops: 1, Corrupts: 1, Degrades: 1, OpHorizon: 8, Timeout: 0.25,
	})
	p.Events = append(p.Events, heffte.FaultEvent{Kind: heffte.FaultKill, Rank: build % ranks, Op: 0})
	return p
}

// doomPlan kills a rank at its first exchange on every build: engines for the
// doomed shape never survive one batch.
func doomPlan(ranks, build int) *heffte.FaultPlan {
	return &heffte.FaultPlan{Timeout: 0.25, Events: []heffte.FaultEvent{
		{Kind: heffte.FaultKill, Rank: build % ranks, Op: 0},
	}}
}

func runChaos(seed int64, smoke bool) error {
	const ranks = 4
	mainLoad := 128
	if smoke {
		mainLoad = 32
	}
	doomedPrefix := fmt.Sprintf("%dx%dx%d/", chaosDoomed[0], chaosDoomed[1], chaosDoomed[2])

	var planMu sync.Mutex
	srv := serve.New(serve.Config{
		Ranks:            ranks,
		Window:           3 * time.Millisecond,
		MaxBatch:         8,
		Workers:          2,
		MaxRetries:       2,
		RetryBackoff:     100 * time.Microsecond,
		RetryBackoffCap:  time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  50 * time.Millisecond,
		EngineFaults: func(shape string, build int) *heffte.FaultPlan {
			var plan *heffte.FaultPlan
			switch {
			case strings.HasPrefix(shape, doomedPrefix):
				plan = doomPlan(ranks, build)
			case build < 2:
				plan = chaosPlan(seed, ranks, build)
			default:
				return nil // healthy engine
			}
			planMu.Lock()
			fmt.Printf("chaos: engine build %d for %s: %s [fingerprint %s]\n",
				build, shape, plan, plan.Fingerprint())
			planMu.Unlock()
			return plan
		},
	})
	defer srv.Close()

	// Inputs and clean-run reference spectra, per shape.
	rng := rand.New(rand.NewSource(seed))
	inputs := map[[3]int][]complex128{}
	expected := map[[3]int][]complex128{}
	for _, g := range [][3]int{chaosPrimary, chaosDoomed} {
		in := make([]complex128, g[0]*g[1]*g[2])
		for i := range in {
			in[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
		}
		inputs[g] = in
		ref, err := chaosReference(g, ranks, in)
		if err != nil {
			return fmt.Errorf("reference transform for %v: %w", g, err)
		}
		expected[g] = ref
	}

	var lost, mismatched, clientRetries int64
	var mu sync.Mutex
	// submitVerified drives one request to completion: fault-class failures
	// are retried client-side from pristine input (the server never writes
	// Data on failure), and every success is checked against the reference.
	submitVerified := func(g [3]int, buf []complex128) error {
		var lastErr error
		for attempt := 0; attempt < 20; attempt++ {
			copy(buf, inputs[g])
			err := srv.Submit(context.Background(), &serve.Request{Global: g, Data: buf})
			if err == nil {
				if !equalComplex(buf, expected[g]) {
					mu.Lock()
					mismatched++
					mu.Unlock()
					return fmt.Errorf("corrupted response for %v", g)
				}
				return nil
			}
			if !heffte.IsFault(err) {
				return fmt.Errorf("non-fault failure for %v: %w", g, err)
			}
			lastErr = err
			mu.Lock()
			clientRetries++
			mu.Unlock()
		}
		mu.Lock()
		lost++
		mu.Unlock()
		return fmt.Errorf("request for %v lost after 20 attempts: %w", g, lastErr)
	}

	// Phase 1 — burst: six concurrent primary-shape requests coalesce into
	// one batch that lands on the faulty build-0 engine, forcing the
	// split-and-retry path (evict build 0, split, evict build 1, recover on
	// the first healthy build).
	fmt.Println("chaos: phase 1 — coalesced burst on faulty engines")
	var wg sync.WaitGroup
	errs := make([]error, 6)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			buf := make([]complex128, len(inputs[chaosPrimary]))
			errs[i] = submitVerified(chaosPrimary, buf)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	// Phase 2 — doomed shape: every engine build dies, so consecutive batch
	// failures trip the breaker and the degraded fresh-plan path takes over.
	fmt.Println("chaos: phase 2 — doomed shape trips the breaker")
	dbuf := make([]complex128, len(inputs[chaosDoomed]))
	for i := 0; i < 4; i++ {
		if err := submitVerified(chaosDoomed, dbuf); err != nil {
			return err
		}
	}

	// Phase 3 — steady load on the now-healthy primary shape.
	fmt.Println("chaos: phase 3 — steady verified load")
	var issued int64
	var loadErr error
	clients := 6
	wg = sync.WaitGroup{}
	var issuedMu sync.Mutex
	next := func() bool {
		issuedMu.Lock()
		defer issuedMu.Unlock()
		if issued >= int64(mainLoad) {
			return false
		}
		issued++
		return true
	}
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]complex128, len(inputs[chaosPrimary]))
			for next() {
				if err := submitVerified(chaosPrimary, buf); err != nil {
					mu.Lock()
					if loadErr == nil {
						loadErr = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	if loadErr != nil {
		return loadErr
	}

	st := srv.Stats()
	rec := st.Recovery
	fmt.Printf("chaos: %d client retries, %d lost, %d corrupted\n", clientRetries, lost, mismatched)
	st.WriteText(os.Stdout)
	check := func(name string, got uint64) error {
		if got == 0 {
			return fmt.Errorf("chaos: expected at least one %s, got none", name)
		}
		return nil
	}
	for _, c := range []struct {
		name string
		got  uint64
	}{
		{"server-side retry", rec.Retries},
		{"batch split", rec.BatchSplits},
		{"fault eviction", rec.FaultEvictions},
		{"breaker trip", rec.BreakerTrips},
		{"degraded execution", rec.DegradedRequests},
	} {
		if err := check(c.name, c.got); err != nil {
			return err
		}
	}
	if lost != 0 || mismatched != 0 {
		return fmt.Errorf("chaos: %d lost, %d corrupted responses", lost, mismatched)
	}
	fmt.Printf("CHAOS OK seed=%d (0 lost, 0 corrupted; retries=%d splits=%d evictions=%d trips=%d degraded=%d)\n",
		seed, rec.Retries, rec.BatchSplits, rec.FaultEvictions, rec.BreakerTrips, rec.DegradedRequests)
	return nil
}

// chaosReference computes the expected spectrum of one input on a clean
// world — the ground truth chaos responses are compared against.
func chaosReference(global [3]int, ranks int, input []complex128) ([]complex128, error) {
	out := make([]complex128, len(input))
	copy(out, input)
	fields := serve.Scatter(global, out, heffte.DefaultBricks(ranks, global))
	errs := make([]error, ranks)
	w := heffte.NewWorld(heffte.Summit(), ranks, heffte.WorldOptions{GPUAware: true})
	w.Run(func(c *heffte.Comm) {
		plan, err := heffte.NewPlan(c, heffte.Config{Global: global})
		if err != nil {
			errs[c.Rank()] = err
			return
		}
		defer plan.Close()
		errs[c.Rank()] = plan.Forward(fields[c.Rank()])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	serve.Gather(global, out, fields)
	return out, nil
}

func equalComplex(a, b []complex128) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
