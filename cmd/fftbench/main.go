// Command fftbench regenerates the tables and figures of the paper's
// evaluation. Each experiment prints the same rows/series the paper reports,
// computed on the simulated Summit/Spock machines.
//
// Usage:
//
//	fftbench -list            # show all experiments
//	fftbench -exp fig4        # reproduce Fig. 4 at paper scale
//	fftbench -exp fig12 -quick
//	fftbench -all -quick      # smoke-run everything
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment id (e.g. fig4, table3); see -list")
		list  = flag.Bool("list", false, "list available experiments")
		all   = flag.Bool("all", false, "run every experiment")
		quick = flag.Bool("quick", false, "reduced sizes/sweeps (seconds instead of minutes)")
	)
	flag.Parse()

	switch {
	case *list:
		for _, e := range bench.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
	case *all:
		for _, e := range bench.All() {
			runOne(e.ID, *quick)
		}
	case *exp != "":
		runOne(*exp, *quick)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runOne(id string, quick bool) {
	t0 := time.Now()
	if err := bench.Run(id, os.Stdout, bench.RunOptions{Quick: quick}); err != nil {
		fmt.Fprintln(os.Stderr, "fftbench:", err)
		os.Exit(1)
	}
	fmt.Printf("[%s completed in %s]\n\n", id, time.Since(t0).Round(time.Millisecond))
}
