// Command fftsim runs a single distributed FFT with explicit options on the
// simulated machine and prints the timing breakdown — the building block of
// every experiment, exposed for ad-hoc exploration.
//
// Usage:
//
//	fftsim -n 512 -ranks 24 -decomp pencils -backend alltoallv
//	fftsim -n 512 -ranks 96 -backend p2p -no-gpu-aware -machine summit
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"

	"repro/heffte"
)

func main() {
	var (
		n          = flag.Int("n", 128, "cube size N (transform is N³)")
		ranks      = flag.Int("ranks", 24, "number of MPI ranks (1 per GPU)")
		decomp     = flag.String("decomp", "auto", "auto|slabs|pencils|bricks")
		backend    = flag.String("backend", "alltoallv", "alltoall|alltoallv|alltoallw|p2p|p2p-blocking")
		contiguous = flag.Bool("contiguous", false, "transpose data for contiguous local FFTs")
		noAware    = flag.Bool("no-gpu-aware", false, "disable GPU-aware MPI (stage through host)")
		mach       = flag.String("machine", "summit", "summit|spock")
		shrink     = flag.Int("shrink", 0, "grid-shrinking threshold in elements/rank (0 = off)")
		batch      = flag.Int("batch", 1, "transforms per batched call")
		iters      = flag.Int("iters", 8, "timed transforms (half forward, half backward)")
		traceOut   = flag.String("trace", "", "write the virtual timeline as Chrome trace-event JSON to this file")
		algo       = flag.String("algo", "auto", "alltoallv schedule: auto|linear|pairwise|ring|bruck|node-aware")
		placement  = flag.String("placement", "block", "rank→GPU placement: block|round-robin")
		wire       = flag.String("wire", "fp64", "on-wire precision of interior exchanges: fp64|fp32|fp16")
	)
	flag.Parse()

	opts, err := parseOptions(*decomp, *backend, *contiguous, *shrink)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fftsim:", err)
		os.Exit(2)
	}
	if opts.Comm.Algo, err = parseAlgo(*algo); err != nil {
		fmt.Fprintln(os.Stderr, "fftsim:", err)
		os.Exit(2)
	}
	if opts.Comm.Wire, err = parseWire(*wire); err != nil {
		fmt.Fprintln(os.Stderr, "fftsim:", err)
		os.Exit(2)
	}
	place, err := parsePlacement(*placement)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fftsim:", err)
		os.Exit(2)
	}
	mdl := heffte.Summit()
	if *mach == "spock" {
		mdl = heffte.Spock()
	}

	tr := heffte.NewTracer()
	w := heffte.NewWorld(mdl, *ranks, heffte.WorldOptions{GPUAware: !*noAware, Tracer: tr, Placement: place})
	global := [3]int{*n, *n, *n}
	var perFFT float64
	var resolved heffte.Decomposition
	var exchanges int
	var phases []heffte.CommPhase
	w.Run(func(c *heffte.Comm) {
		p, err := heffte.NewPlan(c, heffte.Config{Global: global, Opts: opts})
		if err != nil {
			panic(err)
		}
		exec := func(inv bool) {
			fs := make([]*heffte.Field, *batch)
			for i := range fs {
				fs[i] = heffte.NewPhantom(p.InBox())
			}
			if inv {
				err = p.InverseBatch(fs)
			} else {
				err = p.ForwardBatch(fs)
			}
			if err != nil {
				panic(err)
			}
		}
		exec(false)
		exec(false) // warm-up
		c.Barrier()
		t0 := c.Clock()
		for i := 0; i < *iters; i++ {
			exec(i >= *iters/2)
		}
		c.Barrier()
		if c.Rank() == 0 {
			perFFT = (c.Clock() - t0) / float64(*iters)
			resolved = p.Decomp()
			exchanges = p.Exchanges()
			phases = p.CommPhases()
		}
	})

	fmt.Printf("machine=%s ranks=%d nodes=%d transform=%d³ decomp=%v backend=%v gpu-aware=%v batch=%d",
		mdl.Name, *ranks, mdl.Nodes(*ranks), *n, resolved, opts.Backend, !*noAware, *batch)
	if opts.Comm.Wire != heffte.WireFp64 {
		fmt.Printf(" wire=%s", opts.Comm.Wire)
	}
	fmt.Println()
	fmt.Printf("exchanges per transform: %d\n", exchanges)
	if opts.Backend == heffte.BackendAlltoallv && len(phases) > 0 {
		fmt.Printf("comm:")
		for _, ph := range phases {
			if ph.GroupSize == 0 {
				continue
			}
			fmt.Printf(" %s=%s", ph.Label, ph.Algo)
			if ph.Wire != heffte.WireFp64 {
				fmt.Printf("@%s", ph.Wire)
			}
			if ph.Schedule != "" && ph.Schedule != "flat" {
				fmt.Printf("[%s]", ph.Schedule)
			}
		}
		fmt.Println()
	}
	fmt.Printf("time per transform: %s  (%.1f GFLOP/s aggregate)\n",
		heffte.FormatSeconds(perFFT), heffte.Gflops(heffte.FFTFlops(*n**n**n)*float64(*batch), perFFT*float64(*batch)))

	totals := tr.TotalByName(-1)
	var names []string
	for k := range totals {
		names = append(names, k)
	}
	sort.Slice(names, func(i, j int) bool { return totals[names[i]] > totals[names[j]] })
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "kernel\ttotal (slowest rank)")
	for _, k := range names {
		fmt.Fprintf(tw, "%s\t%s\n", k, heffte.FormatSeconds(totals[k]))
	}
	tw.Flush()

	if *traceOut != "" {
		if err := heffte.WriteChromeFile(tr, *traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "fftsim:", err)
			os.Exit(1)
		}
		fmt.Printf("virtual timeline written to %s (open in chrome://tracing or Perfetto)\n", *traceOut)
	}
}

func parseOptions(decomp, backend string, contiguous bool, shrink int) (heffte.Options, error) {
	o := heffte.Options{Contiguous: contiguous, ShrinkThreshold: shrink}
	switch decomp {
	case "auto":
		o.Decomp = heffte.DecompAuto
	case "slabs":
		o.Decomp = heffte.DecompSlabs
	case "pencils":
		o.Decomp = heffte.DecompPencils
	case "bricks":
		o.Decomp = heffte.DecompBricks
	default:
		return o, fmt.Errorf("unknown decomposition %q", decomp)
	}
	switch backend {
	case "alltoall":
		o.Backend = heffte.BackendAlltoall
	case "alltoallv":
		o.Backend = heffte.BackendAlltoallv
	case "alltoallw":
		o.Backend = heffte.BackendAlltoallw
	case "p2p":
		o.Backend = heffte.BackendP2P
	case "p2p-blocking":
		o.Backend = heffte.BackendP2PBlocking
	default:
		return o, fmt.Errorf("unknown backend %q", backend)
	}
	return o, nil
}

func parseAlgo(algo string) (heffte.CollectiveAlgo, error) {
	switch algo {
	case "auto":
		return heffte.AlgoAuto, nil
	case "linear":
		return heffte.AlgoLinear, nil
	case "pairwise":
		return heffte.AlgoPairwise, nil
	case "ring":
		return heffte.AlgoRing, nil
	case "bruck":
		return heffte.AlgoBruck, nil
	case "node-aware":
		return heffte.AlgoNodeAware, nil
	}
	return heffte.AlgoAuto, fmt.Errorf("unknown collective algorithm %q", algo)
}

func parseWire(w string) (heffte.WirePrecision, error) {
	switch w {
	case "fp64", "":
		return heffte.WireFp64, nil
	case "fp32":
		return heffte.WireFp32, nil
	case "fp16":
		return heffte.WireFp16, nil
	}
	return heffte.WireFp64, fmt.Errorf("unknown wire precision %q", w)
}

func parsePlacement(p string) (heffte.Placement, error) {
	switch p {
	case "block", "":
		return heffte.PlaceBlock(), nil
	case "round-robin":
		return heffte.PlaceRoundRobin(), nil
	}
	return heffte.Placement{}, fmt.Errorf("unknown placement %q", p)
}
