// Command fftplan inspects distributed-FFT plans and evaluates the
// bandwidth model of Section III: given a transform size and a process
// count it prints the predicted slab/pencil times (equations 2–3), the
// recommended decomposition, and — with -phase — the full phase diagram the
// paper uses to pick the best setting per machine.
//
// With -dead it also evaluates the elastic-recovery model: the world epoch
// and survivor set after that many rank deaths, the closed-form recovery-
// reshape time, and the predicted resume-vs-restart speedup per kill phase.
//
// Usage:
//
//	fftplan -n 512 -ranks 768
//	fftplan -n 512 -ranks 768 -dead 2
//	fftplan -phase
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/heffte"
)

func main() {
	var (
		n     = flag.Int("n", 512, "cube size N (transform is N³)")
		ranks = flag.Int("ranks", 24, "number of MPI ranks (1 per GPU)")
		phase = flag.Bool("phase", false, "print a size × ranks phase diagram")
		bw    = flag.Float64("bw", 23.5e9, "model bandwidth B in bytes/s (paper: 23.5 GB/s)")
		lat   = flag.Float64("lat", 1e-6, "model latency L in seconds (paper: 1 µs)")
		wire  = flag.String("wire", "fp64", "on-wire precision of interior exchanges: fp64|fp32|fp16")
		dead  = flag.Int("dead", 0, "evaluate the elastic-recovery model after this many rank deaths")
	)
	flag.Parse()
	wp, err := parseWire(*wire)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fftplan:", err)
		os.Exit(2)
	}
	params := heffte.ModelParams{Latency: *lat, Bandwidth: *bw}

	if *phase {
		printPhase(params)
		return
	}

	e := heffte.LookupTableIII(*ranks)
	total := (*n) * (*n) * (*n)
	ts := heffte.SlabTime(total, *ranks, params)
	tp := heffte.PencilTime(total, e.P, e.Q, params)
	m := heffte.Summit()

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "transform\t%d³ complex-to-complex (%d elements)\n", *n, total)
	fmt.Fprintf(tw, "ranks\t%d (%d Summit nodes)\n", *ranks, m.Nodes(*ranks))
	fmt.Fprintf(tw, "input/output bricks\t%v (Table III / min-surface)\n", e.InOut)
	fmt.Fprintf(tw, "pencil grid\t%d × %d\n", e.P, e.Q)
	fmt.Fprintf(tw, "T_slabs (eq. 2)\t%s\n", heffte.FormatSeconds(ts))
	fmt.Fprintf(tw, "T_pencils (eq. 3)\t%s\n", heffte.FormatSeconds(tp))
	if wp != heffte.WireFp64 {
		elem := float64(wp.ComplexBytes())
		tsc := heffte.SlabTimeElem(total, *ranks, elem, params)
		tpc := heffte.PencilTimeElem(total, e.P, e.Q, elem, params)
		fmt.Fprintf(tw, "T_slabs @%s\t%s (bound %.1e)\n", wp, heffte.FormatSeconds(tsc), heffte.WireErrorBound(wp, 1))
		fmt.Fprintf(tw, "T_pencils @%s\t%s (bound %.1e)\n", wp, heffte.FormatSeconds(tpc), heffte.WireErrorBound(wp, 2))
	}
	rec := "pencils"
	best := tp
	if heffte.PreferSlabs([3]int{*n, *n, *n}, e.P, e.Q, params) {
		rec = "slabs"
		best = ts
	}
	fmt.Fprintf(tw, "recommended decomposition\t%s\n", rec)

	if *dead > 0 && *dead < *ranks {
		// Elastic-recovery view: one shrink event losing -dead GPUs. The
		// concrete survivor set is a runtime fact (CommPhases reports it per
		// plan, with the epoch); here the model prices the recovery reshape
		// that redistributes a checkpointed boundary to the survivors and the
		// resume-vs-restart gap per kill phase of the pencil pipeline
		// (4 reshapes interleaved with 3 compute phases).
		surv := *ranks - *dead
		trec := heffte.RecoveryReshapeTime(total, *ranks, surv, 16, params)
		fmt.Fprintf(tw, "after %d death(s)\tepoch 1, %d survivors\n", *dead, surv)
		fmt.Fprintf(tw, "T_recovery_reshape\t%s\n", heffte.FormatSeconds(trec))
		const totalPhases = 7
		for _, kp := range []struct {
			name      string
			completed int
		}{{"early kill (1/7 phases done)", 1}, {"middle kill (4/7)", 4}, {"late kill (6/7)", 6}} {
			fmt.Fprintf(tw, "resume speedup, %s\t%.2fx\n",
				kp.name, heffte.ResumeSpeedup(best, trec, kp.completed, totalPhases))
		}
	}
	tw.Flush()
}

func parseWire(w string) (heffte.WirePrecision, error) {
	switch w {
	case "fp64", "":
		return heffte.WireFp64, nil
	case "fp32":
		return heffte.WireFp32, nil
	case "fp16":
		return heffte.WireFp16, nil
	}
	return heffte.WireFp64, fmt.Errorf("unknown wire precision %q", w)
}

func printPhase(params heffte.ModelParams) {
	sizes := []int{64, 128, 256, 512, 1024, 2048}
	pis := []int{6, 12, 24, 48, 96, 192, 384, 768, 1536, 3072}
	grid := func(pi int) (int, int) {
		e := heffte.LookupTableIII(pi)
		return e.P, e.Q
	}
	pts := heffte.PhaseDiagram(sizes, pis, grid, params)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "N\\ranks")
	for _, pi := range pis {
		fmt.Fprintf(tw, "\t%d", pi)
	}
	fmt.Fprintln(tw)
	i := 0
	for _, s := range sizes {
		fmt.Fprintf(tw, "%d³", s)
		for range pis {
			cell := "pencils"
			if pts[i].Slabs {
				cell = "SLABS"
			}
			fmt.Fprintf(tw, "\t%s", cell)
			i++
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Println("\nSLABS = slab decomposition predicted fastest (eqs. 2-3, Section IV.A)")
}
